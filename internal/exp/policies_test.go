package exp

import (
	"strings"
	"testing"
)

func TestPolicySweepGrid(t *testing.T) {
	r := quickRunner()
	progs := picks(t, "applu", "gcc")
	choices := r.StandardPolicyChoices()
	points := r.PolicySweep(progs, choices)

	if want := len(progs) * len(choices); len(points) != want {
		t.Fatalf("points = %d, want %d", len(points), want)
	}
	byCell := map[string]PolicyPoint{}
	for _, p := range points {
		byCell[p.Bench+"/"+p.Policy] = p
	}

	for _, prog := range progs {
		conv := byCell[prog.Name+"/conventional"]
		// The conventional contender is its own baseline: unit energy-delay,
		// zero slowdown.
		if conv.Cmp.RelativeED != 1 || conv.Cmp.SlowdownPct != 0 {
			t.Errorf("%s/conventional: relED %v slow %v, want 1 and 0",
				prog.Name, conv.Cmp.RelativeED, conv.Cmp.SlowdownPct)
		}
		// Every leakage policy must beat conventional leakage on energy and
		// produce a distinct point.
		seen := map[float64]string{}
		for _, pol := range []string{"dri", "decay", "drowsy", "waygate"} {
			p, ok := byCell[prog.Name+"/"+pol]
			if !ok {
				t.Fatalf("missing cell %s/%s", prog.Name, pol)
			}
			if p.Cmp.RelativeEnergy >= 1 {
				t.Errorf("%s/%s: relative energy %v, want < 1", prog.Name, pol, p.Cmp.RelativeEnergy)
			}
			if prev, dup := seen[p.Cmp.RelativeED]; dup {
				t.Errorf("%s: %s and %s coincide at relED %v", prog.Name, pol, prev, p.Cmp.RelativeED)
			}
			seen[p.Cmp.RelativeED] = pol
		}
		// Drowsy preserves state: identical miss counts to the baseline.
		drowsy := byCell[prog.Name+"/drowsy"]
		if drowsy.Cmp.DRI.ICache.Misses != drowsy.Cmp.Conv.ICache.Misses {
			t.Errorf("%s/drowsy: misses %d != conventional %d",
				prog.Name, drowsy.Cmp.DRI.ICache.Misses, drowsy.Cmp.Conv.ICache.Misses)
		}
		// Decay destroys state: strictly more misses.
		decay := byCell[prog.Name+"/decay"]
		if decay.Cmp.DRI.ICache.Misses <= decay.Cmp.Conv.ICache.Misses {
			t.Errorf("%s/decay: misses %d, want > conventional %d",
				prog.Name, decay.Cmp.DRI.ICache.Misses, decay.Cmp.Conv.ICache.Misses)
		}
	}

	best := BestPolicy(points, 100)
	if len(best) != len(progs) {
		t.Fatalf("BestPolicy covered %d benchmarks, want %d", len(best), len(progs))
	}
	for bench, p := range best {
		if p.Cmp.RelativeED > 1 {
			t.Errorf("%s winner %s has relED %v > conventional", bench, p.Policy, p.Cmp.RelativeED)
		}
	}

	grid := FormatPolicies(points)
	for _, col := range []string{"bench", "conventional", "dri", "decay", "drowsy", "waygate"} {
		if !strings.Contains(grid, col) {
			t.Errorf("grid missing column %q:\n%s", col, grid)
		}
	}
	if out := FormatBestPolicies(best); !strings.Contains(out, "winner") {
		t.Errorf("best-policy table malformed:\n%s", out)
	}
}

func TestBestPolicyRespectsSlowdownBound(t *testing.T) {
	pts := []PolicyPoint{
		{Bench: "b", Policy: "fast"},
		{Bench: "b", Policy: "slow"},
	}
	pts[0].Cmp.RelativeED = 0.9
	pts[0].Cmp.SlowdownPct = 1
	pts[1].Cmp.RelativeED = 0.5
	pts[1].Cmp.SlowdownPct = 50
	best := BestPolicy(pts, 2)
	if got := best["b"].Policy; got != "fast" {
		t.Fatalf("winner = %q, want the one inside the slowdown bound", got)
	}
	if len(BestPolicy(pts, 0.5)) != 0 {
		t.Fatal("no policy qualifies under a 0.5%% bound")
	}
}

// TestPolicySweepDRIMatchesPlainDRI pins the adapter property at the sweep
// level: the "dri" contender's comparison must equal running the same DRI
// configuration without any policy selector, bit for bit.
func TestPolicySweepDRIMatchesPlainDRI(t *testing.T) {
	r := quickRunner()
	progs := picks(t, "applu")
	points := r.PolicySweep(progs, r.StandardPolicyChoices())

	var viaPolicy *PolicyPoint
	for i := range points {
		if points[i].Policy == "dri" {
			viaPolicy = &points[i]
		}
	}
	if viaPolicy == nil {
		t.Fatal("sweep has no dri cell")
	}
	iv := r.Scale.SenseInterval
	plain := r.RunAll([]Task{{
		Prog:   progs[0],
		Config: driConfig(64<<10, 4, r.Params(iv/100, 1<<10)),
	}})[0].Cmp

	if got, want := viaPolicy.Cmp.DRI.CPU.Cycles, plain.DRI.CPU.Cycles; got != want {
		t.Errorf("cycles via policy selector = %d, plain = %d", got, want)
	}
	if got, want := viaPolicy.Cmp.DRI.ICache, plain.DRI.ICache; got != want {
		t.Errorf("i-cache stats via policy selector = %+v, plain = %+v", got, want)
	}
	if got, want := viaPolicy.Cmp.RelativeED, plain.RelativeED; got != want {
		t.Errorf("relative ED via policy selector = %v, plain = %v", got, want)
	}
}
