package exp

// Golden guard for the policy subsystem's compatibility promise: selecting
// policy=dri (or policy=conventional) must reproduce the per-benchmark run
// observables of the pre-policy harness bit for bit. The expectations are
// the SAME golden file TestGoldenRuns pins (testdata/golden_runs.json), so
// any drift the policy layer introduces on the DRI or conventional paths —
// an extra cycle from the hook, a perturbed fraction — fails here against
// numbers the seed established.

import (
	"testing"

	"dricache/internal/dri"
	"dricache/internal/engine"
	"dricache/internal/policy"
	"dricache/internal/sim"
	"dricache/internal/trace"
)

func TestGoldenPolicySelectorsBitForBit(t *testing.T) {
	if *updateGolden {
		t.Skip("golden_runs.json is written by TestGoldenRuns")
	}
	var want map[string]goldenRun
	readGolden(t, "golden_runs.json", &want)

	scale := QuickScale()
	eng := engine.New(0)

	var reqs []engine.Request
	var labels []string
	for _, b := range trace.Benchmarks() {
		conv := sim.Default(sim.Conventional64K(), scale.Instructions).
			WithL1IPolicy(policy.Config{Kind: policy.Conventional})
		driCfg := sim.Default(sim.DRI64K(dri.DefaultParams(scale.SenseInterval)), scale.Instructions).
			WithL1IPolicy(policy.Config{Kind: policy.DRI})
		reqs = append(reqs, engine.Request{Config: conv, Prog: b},
			engine.Request{Config: driCfg, Prog: b})
		labels = append(labels, b.Name+"/conventional", b.Name+"/dri")
	}
	results := eng.RunBatch(reqs)

	for i, res := range results {
		label := labels[i]
		w, ok := want[label]
		if !ok {
			t.Errorf("golden file has no entry for %s", label)
			continue
		}
		checkRun(t, "policy:"+label, snapshotRun(res), w)
	}
}
