package bpred

import (
	"testing"

	"dricache/internal/xrand"
)

func TestConfigCheck(t *testing.T) {
	if err := DefaultConfig().Check(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{BimodalEntries: 0, PHTEntries: 4096, HistoryBits: 12, MetaEntries: 4096, BTBEntries: 2048, RASDepth: 8},
		{BimodalEntries: 4096, PHTEntries: 1000, HistoryBits: 12, MetaEntries: 4096, BTBEntries: 2048, RASDepth: 8},
		{BimodalEntries: 4096, PHTEntries: 4096, HistoryBits: 0, MetaEntries: 4096, BTBEntries: 2048, RASDepth: 8},
		{BimodalEntries: 4096, PHTEntries: 4096, HistoryBits: 12, MetaEntries: 4096, BTBEntries: 2048, RASDepth: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Check(); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	miss := 0
	for i := 0; i < 1000; i++ {
		if p.PredictBranch(0x4000, true) {
			miss++
		}
	}
	if miss > 2 {
		t.Fatalf("always-taken branch mispredicted %d times", miss)
	}
}

func TestAlwaysNotTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	miss := 0
	for i := 0; i < 1000; i++ {
		if p.PredictBranch(0x4000, false) {
			miss++
		}
	}
	if miss > 4 {
		t.Fatalf("never-taken branch mispredicted %d times", miss)
	}
}

func TestAlternatingPatternLearnedByHistory(t *testing.T) {
	// T,N,T,N... defeats bimodal but is trivial for the global-history
	// predictor; the hybrid must converge on it.
	p := New(DefaultConfig())
	miss := 0
	for i := 0; i < 2000; i++ {
		if p.PredictBranch(0x4000, i%2 == 0) {
			miss++
		}
	}
	if rate := float64(miss) / 2000; rate > 0.1 {
		t.Fatalf("alternating pattern miss rate %v, want < 0.1", rate)
	}
}

func TestLoopPatternLearned(t *testing.T) {
	// A loop branch: taken 15 times, then not taken, repeated. The 2-level
	// predictor should get close to the 1-in-16 floor.
	p := New(DefaultConfig())
	miss := 0
	n := 0
	for rep := 0; rep < 300; rep++ {
		for i := 0; i < 16; i++ {
			if p.PredictBranch(0x8000, i != 15) {
				miss++
			}
			n++
		}
	}
	if rate := float64(miss) / float64(n); rate > 0.08 {
		t.Fatalf("loop pattern miss rate %v, want < 0.08", rate)
	}
}

func TestRandomBranchesMispredictHalf(t *testing.T) {
	p := New(DefaultConfig())
	rng := xrand.New(5)
	miss := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.PredictBranch(0x4000, rng.Bool(0.5)) {
			miss++
		}
	}
	rate := float64(miss) / n
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("random branch miss rate %v, want ~0.5", rate)
	}
}

func TestBiasedRandomBranches(t *testing.T) {
	// 90%-taken random branches: the counters should do no worse than the
	// 10% floor by much.
	p := New(DefaultConfig())
	rng := xrand.New(6)
	miss := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.PredictBranch(0x4000, rng.Bool(0.9)) {
			miss++
		}
	}
	rate := float64(miss) / n
	if rate > 0.2 {
		t.Fatalf("biased branch miss rate %v, want < 0.2", rate)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.PredictBranch(uint64(i*4), i%3 == 0)
	}
	s := p.Stats()
	if s.Branches != 100 {
		t.Fatalf("branches = %d, want 100", s.Branches)
	}
	if s.Mispredicts == 0 || s.Mispredicts > 100 {
		t.Fatalf("mispredicts = %d out of range", s.Mispredicts)
	}
	if s.MispredictRate() != float64(s.Mispredicts)/100 {
		t.Fatal("mispredict rate mismatch")
	}
	var empty Stats
	if empty.MispredictRate() != 0 {
		t.Fatal("empty stats rate should be 0")
	}
}

func TestBTBLearnsTargets(t *testing.T) {
	p := New(DefaultConfig())
	if !p.PredictTarget(0x1000, 0x2000) {
		t.Fatal("cold BTB should miss")
	}
	if p.PredictTarget(0x1000, 0x2000) {
		t.Fatal("warm BTB with same target should hit")
	}
	if !p.PredictTarget(0x1000, 0x3000) {
		t.Fatal("changed target should miss")
	}
	s := p.Stats()
	if s.BTBLookups != 3 || s.BTBMisses != 2 {
		t.Fatalf("BTB stats = %+v", s)
	}
}

func TestBTBConflicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 2
	p := New(cfg)
	p.PredictTarget(0x10, 0x100) // index 0: miss, installs
	p.PredictTarget(0x14, 0x200) // index 1: miss, installs
	if p.PredictTarget(0x10, 0x100) {
		t.Fatal("no conflict: should hit")
	}
	p.PredictTarget(0x20, 0x300) // index 0 again: aliases 0x10
	if !p.PredictTarget(0x10, 0x100) {
		t.Fatal("conflict evicted the entry: should miss")
	}
}

func TestRASMatchedCallsReturns(t *testing.T) {
	p := New(DefaultConfig())
	p.Call(0x100)
	p.Call(0x200)
	if p.Return(0x200) {
		t.Fatal("inner return should be predicted")
	}
	if p.Return(0x100) {
		t.Fatal("outer return should be predicted")
	}
	if p.Return(0x999) == false {
		t.Fatal("underflowed/mismatched return must mispredict")
	}
	if p.Stats().Returns != 3 || p.Stats().RASMispredict != 1 {
		t.Fatalf("RAS stats = %+v", p.Stats())
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASDepth = 2
	p := New(cfg)
	p.Call(0x1)
	p.Call(0x2)
	p.Call(0x3) // overwrites 0x1
	if p.Return(0x3) || p.Return(0x2) {
		t.Fatal("top two returns should still predict")
	}
	if !p.Return(0x1) {
		t.Fatal("overflowed frame must mispredict")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		p := New(DefaultConfig())
		rng := xrand.New(77)
		for i := 0; i < 10000; i++ {
			pc := uint64(rng.Intn(1 << 16))
			p.PredictBranch(pc, rng.Bool(0.6))
		}
		return p.Stats()
	}
	if run() != run() {
		t.Fatal("predictor must be deterministic")
	}
}
