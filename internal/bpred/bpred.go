// Package bpred implements the two-level hybrid branch predictor of the
// simulated core (Table 1: "Branch predictor: 2-level hybrid"), following
// the SimpleScalar "comb" organization: a bimodal predictor, a gshare-style
// two-level predictor, and a meta chooser, plus a branch target buffer and a
// return address stack.
package bpred

import "fmt"

// Config sizes the predictor tables. All table sizes must be powers of two.
type Config struct {
	BimodalEntries int // 2-bit counters indexed by PC
	PHTEntries     int // 2-bit counters indexed by history XOR PC (gshare)
	HistoryBits    int // global history length
	MetaEntries    int // 2-bit chooser counters indexed by PC
	BTBEntries     int // direct-mapped target buffer
	RASDepth       int // return address stack
}

// DefaultConfig returns the SimpleScalar-like sizing used in the paper's
// system configuration.
func DefaultConfig() Config {
	return Config{
		BimodalEntries: 4096,
		PHTEntries:     4096,
		HistoryBits:    12,
		MetaEntries:    4096,
		BTBEntries:     2048,
		RASDepth:       32,
	}
}

// Check validates the configuration.
func (c Config) Check() error {
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	switch {
	case !pow2(c.BimodalEntries):
		return fmt.Errorf("bpred: bimodal entries %d not a power of two", c.BimodalEntries)
	case !pow2(c.PHTEntries):
		return fmt.Errorf("bpred: PHT entries %d not a power of two", c.PHTEntries)
	case !pow2(c.MetaEntries):
		return fmt.Errorf("bpred: meta entries %d not a power of two", c.MetaEntries)
	case !pow2(c.BTBEntries):
		return fmt.Errorf("bpred: BTB entries %d not a power of two", c.BTBEntries)
	case c.HistoryBits < 1 || c.HistoryBits > 30:
		return fmt.Errorf("bpred: history bits %d out of range", c.HistoryBits)
	case c.RASDepth < 1:
		return fmt.Errorf("bpred: RAS depth %d < 1", c.RASDepth)
	}
	return nil
}

// Stats counts prediction outcomes.
type Stats struct {
	Branches      uint64 // conditional branches seen
	Mispredicts   uint64 // conditional direction mispredictions
	BTBLookups    uint64
	BTBMisses     uint64 // target unknown or wrong
	Returns       uint64
	RASMispredict uint64
}

// MispredictRate returns direction mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Predictor is a hybrid direction predictor with BTB and RAS. It is not
// safe for concurrent use.
type Predictor struct {
	cfg     Config
	bimodal []uint8
	pht     []uint8
	meta    []uint8
	history uint32
	histMsk uint32

	btbTags    []uint64
	btbTargets []uint64

	ras    []uint64
	rasTop int

	stats Stats
}

// New builds a predictor; it panics on an invalid configuration.
func New(cfg Config) *Predictor {
	if err := cfg.Check(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:        cfg,
		bimodal:    make([]uint8, cfg.BimodalEntries),
		pht:        make([]uint8, cfg.PHTEntries),
		meta:       make([]uint8, cfg.MetaEntries),
		histMsk:    (1 << uint(cfg.HistoryBits)) - 1,
		btbTags:    make([]uint64, cfg.BTBEntries),
		btbTargets: make([]uint64, cfg.BTBEntries),
		ras:        make([]uint64, cfg.RASDepth),
	}
	// Weakly-taken initial state, the usual convention.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.pht {
		p.pht[i] = 2
	}
	for i := range p.meta {
		p.meta[i] = 2 // weakly prefer the two-level predictor
	}
	return p
}

// Stats returns a copy of the counters.
func (p *Predictor) Stats() Stats { return p.stats }

// Config returns the predictor's configuration. Predictor state is purely
// stream-driven (every update depends only on the sequence of control
// instructions, never on timing), so two freshly built predictors with equal
// configurations walk identical state over the same instruction stream —
// the property the lane executor exploits to share one predictor across
// simulation lanes.
func (p *Predictor) Config() Config { return p.cfg }

func taken(counter uint8) bool { return counter >= 2 }

func bump(counter uint8, t bool) uint8 {
	if t {
		if counter < 3 {
			return counter + 1
		}
		return counter
	}
	if counter > 0 {
		return counter - 1
	}
	return counter
}

// PredictBranch predicts and immediately trains on a conditional branch
// with actual outcome `actual`, returning whether the prediction was wrong.
// (Prediction at fetch and update at commit are collapsed, the standard
// approximation in trace-driven timing models.)
func (p *Predictor) PredictBranch(pc uint64, actual bool) (mispredicted bool) {
	p.stats.Branches++
	pcIdx := (pc >> 2)
	bi := int(pcIdx) & (p.cfg.BimodalEntries - 1)
	gi := int((uint32(pcIdx) ^ p.history) & uint32(p.cfg.PHTEntries-1))
	mi := int(pcIdx) & (p.cfg.MetaEntries - 1)

	bPred := taken(p.bimodal[bi])
	gPred := taken(p.pht[gi])
	var pred bool
	if taken(p.meta[mi]) {
		pred = gPred
	} else {
		pred = bPred
	}

	// Train components.
	p.bimodal[bi] = bump(p.bimodal[bi], actual)
	p.pht[gi] = bump(p.pht[gi], actual)
	if bPred != gPred {
		p.meta[mi] = bump(p.meta[mi], gPred == actual)
	}
	p.history = ((p.history << 1) | b2u(actual)) & p.histMsk

	if pred != actual {
		p.stats.Mispredicts++
		return true
	}
	return false
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// PredictTarget looks up (and trains) the BTB for a taken control
// instruction with the given actual target, reporting whether the predicted
// target was wrong (a fetch redirect at execute).
func (p *Predictor) PredictTarget(pc, actualTarget uint64) (mispredicted bool) {
	p.stats.BTBLookups++
	i := int(pc>>2) & (p.cfg.BTBEntries - 1)
	hit := p.btbTags[i] == pc && p.btbTargets[i] == actualTarget
	p.btbTags[i] = pc
	p.btbTargets[i] = actualTarget
	if !hit {
		p.stats.BTBMisses++
		return true
	}
	return false
}

// Call records a call instruction: the return address is pushed on the RAS.
func (p *Predictor) Call(returnAddr uint64) {
	p.ras[p.rasTop] = returnAddr
	p.rasTop = (p.rasTop + 1) % p.cfg.RASDepth
}

// Return predicts a return target from the RAS, reporting whether the
// prediction was wrong (stack overflow/underflow or mismatch).
func (p *Predictor) Return(actualTarget uint64) (mispredicted bool) {
	p.stats.Returns++
	p.rasTop = (p.rasTop - 1 + p.cfg.RASDepth) % p.cfg.RASDepth
	if p.ras[p.rasTop] != actualTarget {
		p.stats.RASMispredict++
		return true
	}
	return false
}
