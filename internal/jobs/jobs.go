// Package jobs is the async job subsystem behind driserve's /v1/jobs API:
// a bounded priority queue with per-client admission control, real mid-run
// cancellation, per-job deadlines, and drain-aware shutdown.
//
// A job is any context-aware function (the server wraps its run/compare/
// sweep handlers). The manager admits it against queue and per-client
// budgets, queues it by priority, dispatches under a worker limit, and
// keeps a bounded window of finished jobs for result pickup. Cancellation
// and deadlines act through the job's context, which the simulation stack
// checks at 256-instruction chunk boundaries — so cancelling a running
// sweep stops it within one chunk+batch boundary, not at the next HTTP
// write.
package jobs

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	StateExpired   State = "expired"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateExpired:
		return true
	}
	return false
}

// Cancellation causes, visible to job bodies via context.Cause.
var (
	// ErrCancelled marks an explicit cancellation (DELETE /v1/jobs/{id}).
	ErrCancelled = errors.New("jobs: cancelled")
	// ErrExpired marks a deadline expiry.
	ErrExpired = errors.New("jobs: deadline exceeded")
	// ErrShutdown marks cancellation by manager shutdown.
	ErrShutdown = errors.New("jobs: shutting down")
	// ErrNotFound is returned for unknown (or evicted) job IDs.
	ErrNotFound = errors.New("jobs: no such job")
)

// AdmissionError is a structured rejection: why the job was not admitted
// and how long the client should wait before retrying.
type AdmissionError struct {
	// Reason is a stable machine-readable cause: "queue_full",
	// "client_limit", "client_budget", or "shutting_down".
	Reason string
	// RetryAfter is the suggested backoff (the Retry-After header value).
	RetryAfter time.Duration
	msg        string
}

func (e *AdmissionError) Error() string { return e.msg }

// Func is a job body. It must honor ctx: the manager cancels it on
// DELETE, deadline expiry, and shutdown, and the simulation stack aborts
// at the next chunk boundary. The returned value becomes the job result.
type Func func(ctx context.Context) (any, error)

// Request describes one job submission.
type Request struct {
	// Kind labels the payload ("run", "compare", "sweep") for snapshots.
	Kind string
	// Client is the admission identity (API key or remote address).
	Client string
	// Priority orders the queue; higher runs first, ties are FIFO.
	Priority int
	// Instructions is the job's cost estimate for the per-client
	// queued-instruction budget (0 = not counted).
	Instructions uint64
	// Deadline bounds the job's total lifetime, queue wait included
	// (0 = none). Capped at Config.MaxDeadline when that is set.
	Deadline time.Duration
	// Run is the job body.
	Run Func
}

// Snapshot is an immutable view of a job, safe to hold after the call.
type Snapshot struct {
	ID           string
	Kind         string
	State        State
	Client       string
	Priority     int
	Instructions uint64
	SubmittedAt  time.Time
	StartedAt    time.Time
	FinishedAt   time.Time
	Deadline     time.Time
	// Result is the job body's return value; set once State is StateDone.
	Result any
	// Error is the failure/cancellation message for terminal non-done states.
	Error string
}

// QueueWait is how long the job waited (or has waited) for a worker.
func (s Snapshot) QueueWait() time.Duration {
	switch {
	case !s.StartedAt.IsZero():
		return s.StartedAt.Sub(s.SubmittedAt)
	case s.State == StateQueued:
		return time.Since(s.SubmittedAt)
	default:
		return 0
	}
}

// job is the manager-internal mutable record.
type job struct {
	snap   Snapshot
	seq    uint64
	run    Func
	cancel context.CancelCauseFunc // non-nil while running
	expiry *time.Timer             // armed while queued with a deadline
	index  int                     // heap index; -1 when not queued
}

// Config bounds a Manager. Zero values select the documented defaults.
type Config struct {
	// Workers caps concurrently running jobs; <= 0 means GOMAXPROCS.
	Workers int
	// MaxQueue caps jobs waiting for a worker; <= 0 means 64.
	MaxQueue int
	// MaxPerClient caps one client's queued+running jobs; <= 0 means 4.
	MaxPerClient int
	// MaxClientInstructions caps the summed instruction estimates of one
	// client's queued jobs; 0 means unlimited.
	MaxClientInstructions uint64
	// Retention caps finished jobs kept for result pickup; <= 0 means 256.
	Retention int
	// MaxDeadline caps per-job deadlines; 0 means uncapped.
	MaxDeadline time.Duration
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 64
}

func (c Config) maxPerClient() int {
	if c.MaxPerClient > 0 {
		return c.MaxPerClient
	}
	return 4
}

func (c Config) retention() int {
	if c.Retention > 0 {
		return c.Retention
	}
	return 256
}

// clientState is one client's admission account.
type clientState struct {
	active       int    // queued + running jobs
	queuedInstrs uint64 // instruction estimates of queued jobs
}

// Manager runs jobs. Construct with NewManager; all methods are safe for
// concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	seq      uint64
	queue    jobHeap
	jobs     map[string]*job
	clients  map[string]*clientState
	running  int
	done     []string // finished job IDs in completion order, for eviction
	draining bool
	idle     chan struct{} // non-nil during Shutdown; closed when running==0

	// onTransition, when set (SetObserver), is called after every state
	// change outside the lock — the server uses it to publish SSE events.
	onTransition func(Snapshot)

	counters    counters
	waitHist    histogram
	avgRunNanos atomic64 // EWMA of run duration in nanoseconds, for Retry-After
}

// NewManager returns a Manager with the given bounds.
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		clients: make(map[string]*clientState),
	}
}

// SetObserver installs fn to be called (outside the manager lock) after
// every job state transition, with the post-transition snapshot.
func (m *Manager) SetObserver(fn func(Snapshot)) {
	m.mu.Lock()
	m.onTransition = fn
	m.mu.Unlock()
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return "j-" + hex.EncodeToString(b[:])
}

// Submit admits, queues, and (capacity permitting) immediately dispatches
// a job, returning its snapshot. A rejection is an *AdmissionError with a
// machine-readable reason and a Retry-After hint.
func (m *Manager) Submit(req Request) (Snapshot, error) {
	if req.Run == nil {
		return Snapshot{}, errors.New("jobs: nil job body")
	}
	deadline := req.Deadline
	if m.cfg.MaxDeadline > 0 && (deadline <= 0 || deadline > m.cfg.MaxDeadline) {
		deadline = m.cfg.MaxDeadline
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.counters.rejected.Add(1)
		return Snapshot{}, &AdmissionError{
			Reason:     "shutting_down",
			RetryAfter: time.Second,
			msg:        "jobs: not accepting work: shutting down",
		}
	}
	if len(m.queue) >= m.cfg.maxQueue() {
		ra := m.retryAfterLocked()
		m.mu.Unlock()
		m.counters.rejected.Add(1)
		return Snapshot{}, &AdmissionError{
			Reason:     "queue_full",
			RetryAfter: ra,
			msg:        fmt.Sprintf("jobs: queue full (%d queued)", m.cfg.maxQueue()),
		}
	}
	cs := m.clients[req.Client]
	if cs == nil {
		cs = &clientState{}
		m.clients[req.Client] = cs
	}
	if cs.active >= m.cfg.maxPerClient() {
		ra := m.retryAfterLocked()
		m.mu.Unlock()
		m.counters.rejected.Add(1)
		return Snapshot{}, &AdmissionError{
			Reason:     "client_limit",
			RetryAfter: ra,
			msg: fmt.Sprintf("jobs: client %q at its concurrency limit (%d jobs)",
				req.Client, m.cfg.maxPerClient()),
		}
	}
	if b := m.cfg.MaxClientInstructions; b > 0 && cs.queuedInstrs+req.Instructions > b {
		ra := m.retryAfterLocked()
		m.mu.Unlock()
		m.counters.rejected.Add(1)
		return Snapshot{}, &AdmissionError{
			Reason:     "client_budget",
			RetryAfter: ra,
			msg: fmt.Sprintf("jobs: client %q over its queued-instruction budget (%d + %d > %d)",
				req.Client, cs.queuedInstrs, req.Instructions, b),
		}
	}

	m.seq++
	j := &job{
		seq:   m.seq,
		run:   req.Run,
		index: -1,
		snap: Snapshot{
			ID:           newID(),
			Kind:         req.Kind,
			State:        StateQueued,
			Client:       req.Client,
			Priority:     req.Priority,
			Instructions: req.Instructions,
			SubmittedAt:  time.Now(),
		},
	}
	if deadline > 0 {
		j.snap.Deadline = j.snap.SubmittedAt.Add(deadline)
		// Expire promptly even while queued; the timer is stopped when the
		// job dispatches (the running context takes over) or terminates.
		id := j.snap.ID
		j.expiry = time.AfterFunc(deadline, func() { m.expireQueued(id) })
	}
	m.jobs[j.snap.ID] = j
	cs.active++
	cs.queuedInstrs += req.Instructions
	heap.Push(&m.queue, j)
	m.counters.queued.Add(1)
	snap := j.snap
	// The queued snapshot leads the notification batch so observers see
	// queued before running even when dispatch is immediate.
	notify := append([]Snapshot{snap}, m.dispatchLocked()...)
	m.mu.Unlock()
	m.notifyAll(notify)
	return snap, nil
}

// retryAfterLocked estimates how long until capacity frees: the queue's
// worth of work at the recent average run time, spread over the workers.
func (m *Manager) retryAfterLocked() time.Duration {
	depth := time.Duration(len(m.queue) + m.running)
	workers := time.Duration(m.cfg.workers())
	avg := time.Duration(m.avgRunNanos.load())
	if avg <= 0 {
		// No run has completed yet, so there is no per-run estimate. The
		// depth/workers clamp below would collapse every early rejection to
		// the same flat 1s and synchronize their retries; instead scale a
		// 1s-per-job guess by the backlog so deeper queues push clients
		// further out even before the EWMA warms up.
		return min(time.Second+time.Second*depth/workers, time.Minute)
	}
	est := avg * depth / workers
	return min(max(est, time.Second), time.Minute)
}

// dispatchLocked starts queued jobs while workers are free, returning the
// snapshots to publish (callers notify outside the lock).
func (m *Manager) dispatchLocked() []Snapshot {
	var started []Snapshot
	for m.running < m.cfg.workers() && len(m.queue) > 0 {
		j := heap.Pop(&m.queue).(*job)
		if j.expiry != nil {
			j.expiry.Stop()
			j.expiry = nil
		}
		now := time.Now()
		if !j.snap.Deadline.IsZero() && !now.Before(j.snap.Deadline) {
			// Expired while queued and the timer lost the race; settle here.
			started = append(started, m.finishLocked(j, StateExpired, nil, ErrExpired))
			continue
		}
		j.snap.State = StateRunning
		j.snap.StartedAt = now
		m.running++
		m.counters.dispatched.Add(1)
		m.counters.running.Add(1)
		if cs := m.clients[j.snap.Client]; cs != nil {
			cs.queuedInstrs -= j.snap.Instructions
		}
		m.waitHist.observe(now.Sub(j.snap.SubmittedAt).Seconds())

		ctx, cancel := context.WithCancelCause(context.Background())
		if !j.snap.Deadline.IsZero() {
			var stop context.CancelFunc
			ctx, stop = context.WithDeadlineCause(ctx, j.snap.Deadline, ErrExpired)
			// Release the deadline timer when the job settles.
			prev := cancel
			cancel = func(cause error) { prev(cause); stop() }
		}
		j.cancel = cancel
		started = append(started, j.snap)
		go m.runJob(j, ctx, cancel)
	}
	return started
}

// runJob executes one dispatched job and settles it.
func (m *Manager) runJob(j *job, ctx context.Context, cancel context.CancelCauseFunc) {
	start := time.Now()
	res, err := func() (res any, err error) {
		defer func() {
			if pv := recover(); pv != nil {
				err = fmt.Errorf("jobs: job panicked: %v", pv)
			}
		}()
		return j.run(ctx)
	}()
	cancel(nil)
	m.noteRunTime(time.Since(start))

	state := StateDone
	if err != nil {
		switch cause := context.Cause(ctx); {
		case errors.Is(cause, ErrExpired):
			state = StateExpired
		case errors.Is(cause, ErrCancelled), errors.Is(cause, ErrShutdown):
			state = StateCancelled
		default:
			state = StateFailed
		}
	}

	m.mu.Lock()
	m.running--
	m.counters.running.Add(^uint64(0))
	snap := m.finishLocked(j, state, res, err)
	notify := m.dispatchLocked()
	if m.idle != nil && m.running == 0 {
		close(m.idle)
		m.idle = nil
	}
	m.mu.Unlock()
	m.notifyAll(append([]Snapshot{snap}, notify...))
}

// noteRunTime folds one run duration into the EWMA behind Retry-After.
func (m *Manager) noteRunTime(d time.Duration) {
	const alpha = 4 // new sample weight 1/alpha
	for {
		old := m.avgRunNanos.load()
		next := d.Nanoseconds()
		if old > 0 {
			next = old + (next-old)/alpha
		}
		if m.avgRunNanos.cas(old, next) {
			return
		}
	}
}

// finishLocked settles a job into a terminal state, releases its client
// account, applies retention, and returns the snapshot to publish.
func (m *Manager) finishLocked(j *job, state State, res any, err error) Snapshot {
	j.snap.State = state
	j.snap.FinishedAt = time.Now()
	if j.expiry != nil {
		j.expiry.Stop()
		j.expiry = nil
	}
	j.cancel = nil
	j.run = nil
	switch state {
	case StateDone:
		j.snap.Result = res
		m.counters.completed.Add(1)
	case StateFailed:
		j.snap.Error = err.Error()
		m.counters.failed.Add(1)
	case StateCancelled:
		j.snap.Error = errMessage(err, "cancelled")
		m.counters.cancelled.Add(1)
	case StateExpired:
		j.snap.Error = errMessage(err, "deadline exceeded")
		m.counters.expired.Add(1)
	}
	if cs := m.clients[j.snap.Client]; cs != nil {
		cs.active--
		if cs.active == 0 && cs.queuedInstrs == 0 {
			delete(m.clients, j.snap.Client)
		}
	}
	m.done = append(m.done, j.snap.ID)
	for len(m.done) > m.cfg.retention() {
		delete(m.jobs, m.done[0])
		m.done = m.done[1:]
	}
	return j.snap
}

func errMessage(err error, fallback string) string {
	if err != nil {
		return err.Error()
	}
	return fallback
}

func (m *Manager) notifyAll(snaps []Snapshot) {
	m.mu.Lock()
	fn := m.onTransition
	m.mu.Unlock()
	if fn == nil {
		return
	}
	for _, s := range snaps {
		fn(s)
	}
}

// expireQueued is the queued-deadline timer body: expire the job if it is
// still waiting for a worker.
func (m *Manager) expireQueued(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.snap.State != StateQueued {
		m.mu.Unlock()
		return
	}
	heap.Remove(&m.queue, j.index)
	if cs := m.clients[j.snap.Client]; cs != nil {
		cs.queuedInstrs -= j.snap.Instructions
	}
	snap := m.finishLocked(j, StateExpired, nil, ErrExpired)
	m.mu.Unlock()
	m.notifyAll([]Snapshot{snap})
}

// Get returns the job's current snapshot.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snap, nil
}

// Cancel cancels a job: a queued job settles immediately; a running job's
// context is cancelled with ErrCancelled and the job settles when its body
// returns (the simulation stack aborts at the next chunk boundary). The
// returned snapshot reflects the state at return; cancelling an already
// terminal job is a no-op reporting that state.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, ErrNotFound
	}
	switch j.snap.State {
	case StateQueued:
		heap.Remove(&m.queue, j.index)
		if cs := m.clients[j.snap.Client]; cs != nil {
			cs.queuedInstrs -= j.snap.Instructions
		}
		snap := m.finishLocked(j, StateCancelled, nil, ErrCancelled)
		m.mu.Unlock()
		m.notifyAll([]Snapshot{snap})
		return snap, nil
	case StateRunning:
		cancel := j.cancel
		snap := j.snap
		m.mu.Unlock()
		if cancel != nil {
			cancel(ErrCancelled)
		}
		return snap, nil
	default:
		snap := j.snap
		m.mu.Unlock()
		return snap, nil
	}
}

// List returns snapshots of every retained job, newest submission first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snap)
	}
	m.mu.Unlock()
	slices.SortFunc(out, func(a, b Snapshot) int {
		return b.SubmittedAt.Compare(a.SubmittedAt)
	})
	return out
}

// Shutdown stops admission, cancels every queued job, and drains running
// ones: it waits for them to finish until ctx is done, then cancels their
// contexts (cause ErrShutdown) and waits for the bodies to return — which
// the chunk-boundary checks make prompt. Returns ctx.Err() if the drain
// deadline forced cancellation, nil if everything drained naturally.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	var notify []Snapshot
	for len(m.queue) > 0 {
		j := heap.Pop(&m.queue).(*job)
		if cs := m.clients[j.snap.Client]; cs != nil {
			cs.queuedInstrs -= j.snap.Instructions
		}
		notify = append(notify, m.finishLocked(j, StateCancelled, nil, ErrShutdown))
	}
	var idle chan struct{}
	if m.running > 0 {
		idle = make(chan struct{})
		m.idle = idle
	}
	m.mu.Unlock()
	m.notifyAll(notify)
	if idle == nil {
		return nil
	}

	select {
	case <-idle:
		return nil
	case <-ctx.Done():
	}

	// Drain deadline hit: force-cancel what is still running, then wait for
	// the bodies to observe it and settle.
	m.mu.Lock()
	var cancels []context.CancelCauseFunc
	for _, j := range m.jobs {
		if j.snap.State == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c(ErrShutdown)
	}
	<-idle
	return ctx.Err()
}
