package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dricache/internal/obs"
)

// waitState polls until the job reaches a terminal state or the deadline.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s settled as %s (error %q), want %s", id, snap.State, snap.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s within 5s", id, want)
	return Snapshot{}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	snap, err := m.Submit(Request{Kind: "run", Client: "a", Run: func(ctx context.Context) (any, error) {
		return "payload", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, StateDone)
	if got.Result != "payload" {
		t.Fatalf("result = %v, want payload", got.Result)
	}
	if got.Kind != "run" || got.Client != "a" {
		t.Fatalf("snapshot lost metadata: %+v", got)
	}
	s := m.Stats()
	if s.Completed != 1 || s.Queued != 1 {
		t.Fatalf("stats = %+v, want 1 queued / 1 completed", s)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan struct{})
	snap, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, StateCancelled)
	if got.Error == "" {
		t.Fatal("cancelled job has empty error")
	}
	if m.Stats().Cancelled != 1 {
		t.Fatalf("stats = %+v, want 1 cancelled", m.Stats())
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxPerClient: 8})
	block := make(chan struct{})
	started := make(chan struct{})
	if _, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		t.Error("cancelled queued job ran")
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s, want cancelled", got.State)
	}
	close(block)
}

func TestPriorityOrdersQueue(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxPerClient: 16})
	block := make(chan struct{})
	started := make(chan struct{})
	if _, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []int
	mk := func(tag int) Func {
		return func(ctx context.Context) (any, error) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return nil, nil
		}
	}
	var last Snapshot
	for i, prio := range []int{0, 5, 1} {
		s, err := m.Submit(Request{Client: "a", Priority: prio, Run: mk(i)})
		if err != nil {
			t.Fatal(err)
		}
		last = s
	}
	_ = last
	close(block)
	// All three queued jobs run on the single worker in priority order.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("execution order %v, want [1 2 0] (priority 5, 1, 0)", order)
	}
}

func TestQueueFullRejects(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxQueue: 1, MaxPerClient: 16})
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	body := func(ctx context.Context) (any, error) { <-block; return nil, nil }
	if _, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit(Request{Client: "a", Run: body}); err != nil {
		t.Fatalf("first queued submit rejected: %v", err)
	}
	_, err := m.Submit(Request{Client: "a", Run: body})
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != "queue_full" {
		t.Fatalf("err = %v, want AdmissionError queue_full", err)
	}
	if adm.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", adm.RetryAfter)
	}
	if m.Stats().Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 rejected", m.Stats())
	}
}

// TestRetryAfterScalesWithDepthBeforeFirstCompletion pins the cold-start
// Retry-After fallback: with no completed run (empty duration EWMA) the hint
// must still grow with the current backlog, so a burst of early rejections
// doesn't tell every client to come back at the same flat second.
func TestRetryAfterScalesWithDepthBeforeFirstCompletion(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxQueue: 64, MaxPerClient: 1})
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	if _, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started

	reject := func() time.Duration {
		t.Helper()
		_, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) { return nil, nil }})
		var adm *AdmissionError
		if !errors.As(err, &adm) || adm.Reason != "client_limit" {
			t.Fatalf("err = %v, want AdmissionError client_limit", err)
		}
		return adm.RetryAfter
	}

	shallow := reject() // depth 1: just the running job
	if shallow <= time.Second {
		t.Fatalf("shallow RetryAfter = %v, want > 1s (flat fallback resurfaced)", shallow)
	}
	// Deepen the backlog with other clients' queued jobs; nothing has
	// completed, so the EWMA is still empty.
	for i := 0; i < 8; i++ {
		client := fmt.Sprintf("filler-%d", i)
		if _, err := m.Submit(Request{Client: client, Run: func(ctx context.Context) (any, error) {
			<-block
			return nil, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	deep := reject() // depth 9: one running + eight queued
	if deep <= shallow {
		t.Fatalf("RetryAfter did not scale with depth: shallow %v, deep %v", shallow, deep)
	}
}

func TestPerClientLimit(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxPerClient: 1})
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	if _, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	_, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) { return nil, nil }})
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != "client_limit" {
		t.Fatalf("same-client err = %v, want AdmissionError client_limit", err)
	}
	// A different client is unaffected.
	if _, err := m.Submit(Request{Client: "b", Run: func(ctx context.Context) (any, error) { return nil, nil }}); err != nil {
		t.Fatalf("other client rejected: %v", err)
	}
}

func TestClientInstructionBudget(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxPerClient: 16, MaxClientInstructions: 100})
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	// Occupy the worker so later submissions stay queued (budget counts
	// queued instructions only).
	if _, err := m.Submit(Request{Client: "a", Instructions: 90, Run: func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit(Request{Client: "a", Instructions: 60, Run: func(ctx context.Context) (any, error) { return nil, nil }}); err != nil {
		t.Fatalf("within budget rejected: %v", err)
	}
	_, err := m.Submit(Request{Client: "a", Instructions: 60, Run: func(ctx context.Context) (any, error) { return nil, nil }})
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != "client_budget" {
		t.Fatalf("err = %v, want AdmissionError client_budget", err)
	}
}

func TestDeadlineExpiresRunningJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	snap, err := m.Submit(Request{Client: "a", Deadline: 20 * time.Millisecond,
		Run: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, context.Cause(ctx)
		}})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, StateExpired)
	if got.Error == "" {
		t.Fatal("expired job has empty error")
	}
	if m.Stats().Expired != 1 {
		t.Fatalf("stats = %+v, want 1 expired", m.Stats())
	}
}

func TestDeadlineExpiresQueuedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxPerClient: 8})
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	if _, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	snap, err := m.Submit(Request{Client: "a", Deadline: 20 * time.Millisecond,
		Run: func(ctx context.Context) (any, error) {
			t.Error("expired queued job ran")
			return nil, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateExpired)
}

func TestMaxDeadlineCapsUnboundedJobs(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxDeadline: 10 * time.Millisecond})
	snap, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Deadline.IsZero() {
		t.Fatal("MaxDeadline did not stamp a deadline on an unbounded job")
	}
	waitState(t, m, snap.ID, StateExpired)
}

func TestRetentionEvictsOldest(t *testing.T) {
	m := NewManager(Config{Workers: 1, Retention: 2, MaxPerClient: 16})
	var ids []string
	for i := 0; i < 4; i++ {
		snap, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) { return i, nil }})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, snap.ID, StateDone)
		ids = append(ids, snap.ID)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest job still retained (err %v), want ErrNotFound", err)
	}
	if _, err := m.Get(ids[3]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
	if got := m.Stats().Retained; got != 2 {
		t.Fatalf("retained = %d, want 2", got)
	}
}

func TestFailedJobReportsError(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	snap, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		return nil, errors.New("boom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, StateFailed)
	if got.Error != "boom" {
		t.Fatalf("error = %q, want boom", got.Error)
	}
}

func TestJobPanicBecomesFailure(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	snap, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		panic("kaboom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, StateFailed)
	if got.Error == "" {
		t.Fatal("panicked job has empty error")
	}
}

func TestShutdownDrainsAndCancelsQueued(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxPerClient: 8})
	release := make(chan struct{})
	started := make(chan struct{})
	running, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-release
		return "done", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		t.Error("queued job ran during shutdown")
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v, want nil (drained naturally)", err)
	}
	if got, _ := m.Get(running.ID); got.State != StateDone {
		t.Fatalf("running job state = %s, want done", got.State)
	}
	if got, _ := m.Get(queued.ID); got.State != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled", got.State)
	}
	// Admission is closed.
	_, err = m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) { return nil, nil }})
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != "shutting_down" {
		t.Fatalf("post-shutdown submit err = %v, want AdmissionError shutting_down", err)
	}
}

func TestShutdownForceCancelsAtDeadline(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan struct{})
	snap, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded (forced drain)", err)
	}
	got, _ := m.Get(snap.ID)
	if got.State != StateCancelled {
		t.Fatalf("forced job state = %s, want cancelled", got.State)
	}
}

func TestObserverSeesTransitions(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	var mu sync.Mutex
	var states []State
	m.SetObserver(func(s Snapshot) {
		mu.Lock()
		states = append(states, s.State)
		mu.Unlock()
	})
	snap, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(states)
		mu.Unlock()
		if n >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) < 3 || states[0] != StateQueued || states[1] != StateRunning || states[len(states)-1] != StateDone {
		t.Fatalf("observed transitions %v, want [queued running ... done]", states)
	}
}

func TestRegisterMetricsExposesSeries(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	reg := obs.NewRegistry()
	m.RegisterMetrics(reg)
	snap, err := m.Submit(Request{Client: "a", Run: func(ctx context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)
	s := reg.Snapshot()
	for name, want := range map[string]float64{
		"jobs_queued_total":    1,
		"jobs_running_total":   1,
		"jobs_completed_total": 1,
		"jobs_rejected_total":  0,
		"jobs_queue_depth":     0,
	} {
		if got := s.Value(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	fam, ok := s.Family("jobs_queue_wait_seconds")
	if !ok {
		t.Fatal("jobs_queue_wait_seconds not registered")
	}
	_ = fam
}

func TestListNewestFirst(t *testing.T) {
	m := NewManager(Config{Workers: 2, MaxPerClient: 16})
	for i := 0; i < 3; i++ {
		snap, err := m.Submit(Request{Client: fmt.Sprintf("c%d", i), Run: func(ctx context.Context) (any, error) { return nil, nil }})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, snap.ID, StateDone)
		time.Sleep(2 * time.Millisecond)
	}
	l := m.List()
	if len(l) != 3 {
		t.Fatalf("List len = %d, want 3", len(l))
	}
	for i := 1; i < len(l); i++ {
		if l[i].SubmittedAt.After(l[i-1].SubmittedAt) {
			t.Fatalf("List not newest-first at %d", i)
		}
	}
}
