package jobs

// jobHeap is the admission queue: a max-heap on priority with FIFO order
// inside one priority (submission sequence breaks ties), implementing
// container/heap. Jobs track their index so Cancel and queued-deadline
// expiry can remove from the middle.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(i, j int) bool {
	if h[i].snap.Priority != h[j].snap.Priority {
		return h[i].snap.Priority > h[j].snap.Priority
	}
	return h[i].seq < h[j].seq
}

func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.index = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}
