package jobs

// Job telemetry: per-manager lifecycle counters, queue gauges, and the
// queue-wait histogram, projected into an obs.Registry for /metrics and
// snapshotted as Stats for /v1/stats and /healthz.

import (
	"sync/atomic"

	"dricache/internal/obs"
)

// counters are the manager's lifecycle totals. queued counts admissions,
// running counts dispatches minus settlements (a live gauge kept as an
// atomic so Stats needs no lock).
type counters struct {
	queued     atomic.Uint64
	dispatched atomic.Uint64
	running    atomic.Uint64
	completed  atomic.Uint64
	failed     atomic.Uint64
	cancelled  atomic.Uint64
	rejected   atomic.Uint64
	expired    atomic.Uint64
}

// histogram is a nil-safe obs.Histogram slot: observations before
// RegisterMetrics (or without a registry at all) are dropped.
type histogram struct {
	h atomic.Pointer[obs.Histogram]
}

func (s *histogram) observe(v float64) {
	if h := s.h.Load(); h != nil {
		h.Observe(v)
	}
}

// atomic64 is a CAS-able int64 (the run-time EWMA behind Retry-After).
type atomic64 struct{ v atomic.Int64 }

func (a *atomic64) load() int64           { return a.v.Load() }
func (a *atomic64) cas(old, v int64) bool { return a.v.CompareAndSwap(old, v) }

// Stats is a point-in-time view of the manager for /v1/stats and /healthz.
type Stats struct {
	// QueueDepth is the number of jobs waiting for a worker.
	QueueDepth int `json:"queueDepth"`
	// Running is the number of jobs currently executing.
	Running int `json:"running"`
	// Retained is the number of jobs (any state) addressable by ID.
	Retained int `json:"retained"`
	// Draining reports whether Shutdown has stopped admission.
	Draining bool `json:"draining"`
	// Lifecycle totals.
	Queued    uint64 `json:"queued"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Rejected  uint64 `json:"rejected"`
	Expired   uint64 `json:"expired"`
}

// Stats returns the manager's current counters and queue state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	depth := len(m.queue)
	running := m.running
	retained := len(m.jobs)
	draining := m.draining
	m.mu.Unlock()
	return Stats{
		QueueDepth: depth,
		Running:    running,
		Retained:   retained,
		Draining:   draining,
		Queued:     m.counters.queued.Load(),
		Completed:  m.counters.completed.Load(),
		Failed:     m.counters.failed.Load(),
		Cancelled:  m.counters.cancelled.Load(),
		Rejected:   m.counters.rejected.Load(),
		Expired:    m.counters.expired.Load(),
	}
}

// RegisterMetrics registers the manager's job telemetry with the registry:
// jobs_{queued,running,completed,failed,cancelled,rejected,expired}_total,
// the queue-depth and running gauges, and the queue-wait histogram.
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	counter := func(v *atomic.Uint64) func() float64 {
		return func() float64 { return float64(v.Load()) }
	}
	r.NewCounterFunc("jobs_queued_total",
		"Jobs admitted to the queue.", counter(&m.counters.queued))
	r.NewCounterFunc("jobs_running_total",
		"Jobs dispatched to a worker.", counter(&m.counters.dispatched))
	r.NewCounterFunc("jobs_completed_total",
		"Jobs finished successfully.", counter(&m.counters.completed))
	r.NewCounterFunc("jobs_failed_total",
		"Jobs finished with an error.", counter(&m.counters.failed))
	r.NewCounterFunc("jobs_cancelled_total",
		"Jobs cancelled (explicitly or by shutdown).", counter(&m.counters.cancelled))
	r.NewCounterFunc("jobs_rejected_total",
		"Submissions rejected by admission control.", counter(&m.counters.rejected))
	r.NewCounterFunc("jobs_expired_total",
		"Jobs that hit their deadline (queued or running).", counter(&m.counters.expired))
	r.NewGaugeFunc("jobs_queue_depth",
		"Jobs waiting for a worker.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.queue))
		})
	r.NewGaugeFunc("jobs_running",
		"Jobs currently executing.", func() float64 {
			return float64(m.counters.running.Load())
		})
	m.waitHist.h.Store(r.NewHistogram("jobs_queue_wait_seconds",
		"Time jobs spent waiting for a worker.",
		obs.ExponentialBuckets(0.001, 4, 10)))
}
