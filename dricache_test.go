package dricache

import (
	"math"
	"testing"
)

func TestBenchmarkRegistry(t *testing.T) {
	if len(Benchmarks()) != 15 || len(BenchmarkNames()) != 15 {
		t.Fatal("benchmark registry wrong")
	}
	if _, err := BenchmarkByName("compress"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("quake"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	bench, err := BenchmarkByName("applu")
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(50_000)
	params.MissBound = 300
	cfg := NewDRI(64<<10, 1, params)
	cmp := Compare(cfg, bench, 600_000)
	if cmp.RelativeED <= 0 || cmp.RelativeED >= 1 {
		t.Fatalf("applu relative ED = %v, want in (0,1)", cmp.RelativeED)
	}
	if cmp.DRI.AvgActiveFraction >= 1 {
		t.Fatal("DRI run should have downsized")
	}
}

func TestConventionalRun(t *testing.T) {
	bench, _ := BenchmarkByName("mgrid")
	res := Run(NewConventional(64<<10, 1), bench, 300_000)
	if res.CPU.Instructions != 300_000 || res.AvgActiveFraction != 1 {
		t.Fatalf("conventional run wrong: %+v", res.CPU)
	}
}

func TestTable2Facade(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("Table2 rows = %d", len(rows))
	}
	if math.Abs(rows[2].StandbyLeakE9NJ-53) > 6 {
		t.Fatalf("gated standby = %v, want ~53", rows[2].StandbyLeakE9NJ)
	}
	m := EvaluateCell(CellNMOSGatedVdd())
	if m.EnergySavingsPct < 95 {
		t.Fatalf("gated savings = %v%%, want ~97%%", m.EnergySavingsPct)
	}
	if DefaultTech().Vdd != 1.0 {
		t.Fatal("default tech should be the 1.0V point")
	}
}

func TestEngineFacade(t *testing.T) {
	eng := NewEngine(2)
	bench, err := BenchmarkByName("applu")
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(50_000)
	params.MissBound = 300
	cfg := NewDRI(64<<10, 1, params)

	cmp := eng.Compare(cfg, bench, 600_000)
	if cmp.RelativeED <= 0 || cmp.RelativeED >= 1 {
		t.Fatalf("relative ED = %v, want in (0,1)", cmp.RelativeED)
	}
	// The identical request again must be a pure cache hit.
	eng.Compare(cfg, bench, 600_000)
	s := eng.Stats()
	if s.Misses != 2 || s.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 misses + 2 hits", s)
	}
	if s.Parallelism != 2 {
		t.Fatalf("parallelism = %d, want 2", s.Parallelism)
	}

	// An experiments harness on the same engine reuses its baseline.
	r := NewExperimentsOn(eng, Scale{Instructions: 600_000, SenseInterval: 50_000})
	if r.Baseline(bench, 64<<10, 1).CPU.Cycles == 0 {
		t.Fatal("baseline did not run")
	}
	if got := eng.Stats().Misses; got != 2 {
		t.Fatalf("baseline re-simulated: misses = %d, want 2", got)
	}

	// Engine results are identical to the direct facade path.
	direct := Run(cfg, bench, 600_000)
	if viaEngine := eng.Run(NewSimConfig(cfg, 600_000), bench); viaEngine.CPU.Cycles != direct.CPU.Cycles {
		t.Fatalf("engine cycles %d != direct cycles %d", viaEngine.CPU.Cycles, direct.CPU.Cycles)
	}
}

func TestExperimentsFacade(t *testing.T) {
	r := NewExperiments(Scale{Instructions: 400_000, SenseInterval: 50_000})
	bench, _ := BenchmarkByName("mgrid")
	base := r.Baseline(bench, 64<<10, 1)
	if base.CPU.Cycles == 0 {
		t.Fatal("baseline did not run")
	}
	if DefaultScale().Instructions == 0 {
		t.Fatal("default scale empty")
	}
}
