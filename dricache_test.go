package dricache

import (
	"math"
	"testing"
)

func TestBenchmarkRegistry(t *testing.T) {
	if len(Benchmarks()) != 15 || len(BenchmarkNames()) != 15 {
		t.Fatal("benchmark registry wrong")
	}
	if _, err := BenchmarkByName("compress"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("quake"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	bench, err := BenchmarkByName("applu")
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(50_000)
	params.MissBound = 300
	cfg := NewDRI(64<<10, 1, params)
	cmp := Compare(cfg, bench, 600_000)
	if cmp.RelativeED <= 0 || cmp.RelativeED >= 1 {
		t.Fatalf("applu relative ED = %v, want in (0,1)", cmp.RelativeED)
	}
	if cmp.DRI.AvgActiveFraction >= 1 {
		t.Fatal("DRI run should have downsized")
	}
}

func TestConventionalRun(t *testing.T) {
	bench, _ := BenchmarkByName("mgrid")
	res := Run(NewConventional(64<<10, 1), bench, 300_000)
	if res.CPU.Instructions != 300_000 || res.AvgActiveFraction != 1 {
		t.Fatalf("conventional run wrong: %+v", res.CPU)
	}
}

func TestTable2Facade(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("Table2 rows = %d", len(rows))
	}
	if math.Abs(rows[2].StandbyLeakE9NJ-53) > 6 {
		t.Fatalf("gated standby = %v, want ~53", rows[2].StandbyLeakE9NJ)
	}
	m := EvaluateCell(CellNMOSGatedVdd())
	if m.EnergySavingsPct < 95 {
		t.Fatalf("gated savings = %v%%, want ~97%%", m.EnergySavingsPct)
	}
	if DefaultTech().Vdd != 1.0 {
		t.Fatal("default tech should be the 1.0V point")
	}
}

func TestExperimentsFacade(t *testing.T) {
	r := NewExperiments(Scale{Instructions: 400_000, SenseInterval: 50_000})
	bench, _ := BenchmarkByName("mgrid")
	base := r.Baseline(bench, 64<<10, 1)
	if base.CPU.Cycles == 0 {
		t.Fatal("baseline did not run")
	}
	if DefaultScale().Instructions == 0 {
		t.Fatal("default scale empty")
	}
}
