// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus the DESIGN.md ablations and microbenchmarks of
// the simulation substrates.
//
// The figure benchmarks run the real experiment pipeline at the reduced
// QuickScale (1M instructions, 50K-instruction sense intervals) over a
// three-benchmark core set (one per class: applu, fpppp, gcc) so that
// `go test -bench=. -benchmem` finishes in minutes; the cmd/ tools run the
// same experiments at full scale over all fifteen benchmarks. Each target
// reports the figure's headline quantity as a custom metric.
package dricache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dricache/internal/circuit"
	"dricache/internal/cpu"
	"dricache/internal/exp"
	"dricache/internal/isa"
	"dricache/internal/sim"
	"dricache/internal/timeline"
	"dricache/internal/trace"
)

// coreSet returns one representative benchmark per class.
func coreSet(b *testing.B) []trace.Program {
	b.Helper()
	var out []trace.Program
	for _, name := range []string{"applu", "fpppp", "gcc"} {
		p, err := trace.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// sharedBase caches the QuickScale Figure 3 search that Figures 4–6 and
// the sweeps perturb.
var (
	baseOnce sync.Once
	baseRows []exp.Fig3Row
)

func sharedBase(b *testing.B) ([]exp.Fig3Row, *exp.Runner) {
	b.Helper()
	r := exp.NewRunner(exp.QuickScale())
	baseOnce.Do(func() {
		var progs []trace.Program
		for _, name := range []string{"applu", "fpppp", "gcc"} {
			p, err := trace.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			progs = append(progs, p)
		}
		baseRows = r.Figure3(exp.QuickSpace(r.Scale), progs)
	})
	return baseRows, r
}

// BenchmarkTable2 regenerates the paper's Table 2 from the circuit model
// (E1 in DESIGN.md).
func BenchmarkTable2(b *testing.B) {
	tech := circuit.Default018()
	var standby float64
	for i := 0; i < b.N; i++ {
		rows := circuit.Table2(tech)
		standby = rows[2].StandbyLeakE9NJ
	}
	b.ReportMetric(standby, "standby-e9nJ")
}

// fig3Once runs the quick Figure 3 search on a fresh engine and returns
// the mean constrained relative ED.
func fig3Once(progs []trace.Program) float64 {
	r := exp.NewRunner(exp.QuickScale())
	rows := r.Figure3(exp.QuickSpace(r.Scale), progs)
	sum := 0.0
	for _, row := range rows {
		sum += row.Constrained.Cmp.RelativeED
	}
	return sum / float64(len(rows))
}

// BenchmarkFig3 runs the best-case energy-delay search (E2/E3) over the
// core set and reports the mean constrained relative ED. The trace replay
// store is primed first, so this measures the warm-store sweep path every
// production sweep after the first takes; BenchmarkFig3ColdStore is the
// generator-path counterpart.
func BenchmarkFig3(b *testing.B) {
	progs := coreSet(b)
	fig3Once(progs) // prime the replay store (and pin the expected result)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean = fig3Once(progs)
	}
	b.ReportMetric(mean, "mean-ED(C)")
}

// fig3TimelineOnce is fig3Once with the interval flight recorder attached
// to every simulation in the sweep.
func fig3TimelineOnce(progs []trace.Program) float64 {
	scale := exp.QuickScale()
	scale.Timeline = TimelineConfig{Enabled: true}
	r := exp.NewRunner(scale)
	rows := r.Figure3(exp.QuickSpace(r.Scale), progs)
	sum := 0.0
	for _, row := range rows {
		sum += row.Constrained.Cmp.RelativeED
	}
	return sum / float64(len(rows))
}

// BenchmarkFig3Timeline is BenchmarkFig3 with per-interval recording on for
// every lane; its delta over BenchmarkFig3 is the flight recorder's whole
// overhead (budgeted at <= 5%).
func BenchmarkFig3Timeline(b *testing.B) {
	progs := coreSet(b)
	fig3TimelineOnce(progs) // prime the replay store
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean = fig3TimelineOnce(progs)
	}
	b.ReportMetric(mean, "mean-ED(C)")
}

// BenchmarkFig3ColdStore is BenchmarkFig3 with the replay store disabled:
// every simulation regenerates its instruction stream through the trace
// generator, the pre-replay-store behaviour. The warm/cold ratio is the
// replay store's sweep-level payoff.
func BenchmarkFig3ColdStore(b *testing.B) {
	st := trace.SharedStore()
	st.SetBudget(0)
	defer st.SetBudget(trace.DefaultStoreBudget)
	progs := coreSet(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean = fig3Once(progs)
	}
	b.ReportMetric(mean, "mean-ED(C)")
}

// policySweepOnce runs the five-policy shoot-out over progs on a fresh
// engine and returns the grid's mean relative ED.
func policySweepOnce(progs []trace.Program) float64 {
	r := exp.NewRunner(exp.QuickScale())
	points := r.PolicySweep(progs, r.StandardPolicyChoices())
	sum := 0.0
	for _, p := range points {
		sum += p.Cmp.RelativeED
	}
	return sum / float64(len(points))
}

// BenchmarkPolicySweep measures the warm-store policy shoot-out (every
// benchmark under conventional, DRI, decay, drowsy, and way-gating) over
// the core set at quick scale.
func BenchmarkPolicySweep(b *testing.B) {
	progs := coreSet(b)
	policySweepOnce(progs) // prime the replay store
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean = policySweepOnce(progs)
	}
	b.ReportMetric(mean, "mean-ED")
}

// BenchmarkPolicySweepColdStore is BenchmarkPolicySweep on the generator
// path (replay store disabled).
func BenchmarkPolicySweepColdStore(b *testing.B) {
	st := trace.SharedStore()
	st.SetBudget(0)
	defer st.SetBudget(trace.DefaultStoreBudget)
	progs := coreSet(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean = policySweepOnce(progs)
	}
	b.ReportMetric(mean, "mean-ED")
}

// laneSweepConfigs builds n distinct DRI configurations — a miss-bound
// ladder on the 64K direct-mapped geometry — sharing one instruction
// budget, the shape of one sweep benchmark's worth of lane work.
func laneSweepConfigs(n int, instrs uint64) []SimConfig {
	cfgs := make([]SimConfig, n)
	for i := range cfgs {
		p := DefaultParams(50_000)
		p.MissBound = uint64(50 * (i + 1))
		cfgs[i] = NewSimConfig(NewDRI(64<<10, 1, p), instrs)
	}
	return cfgs
}

// BenchmarkLaneSweep measures the lane executor on a warm store: N
// configurations of one benchmark advanced lock-step over a single decode
// of its recorded stream — the inner loop of every sweep once the engine
// cache and trace store are primed. Aggregate lane-instrs/s against
// BenchmarkFullSystemSimulation's solo instrs/s is the per-lane saving
// from sharing the decode and the branch-predictor walk.
func BenchmarkLaneSweep(b *testing.B) {
	prog, err := BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	const instrs = 1_000_000
	for _, lanes := range []int{8, 16} {
		b.Run(fmt.Sprintf("%dlanes", lanes), func(b *testing.B) {
			cfgs := laneSweepConfigs(lanes, instrs)
			RunLanes(cfgs, prog) // prime the replay store
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RunLanes(cfgs, prog)
			}
			b.ReportMetric(
				float64(instrs)*float64(lanes)*float64(b.N)/b.Elapsed().Seconds(),
				"lane-instrs/s")
		})
	}
}

// BenchmarkLaneCancel measures mid-run cancellation on the lane executor:
// each iteration starts the 8-lane sweep of BenchmarkLaneSweep with the
// flight recorder attached, cancels at the first 50K-instruction interval
// point, and runs to the abort. ns/op is the whole cancelled run (simulate
// to the interval, then unwind); the settle-ns metric isolates the window
// from cancel to RunLanesCtx returning — the chunk-boundary promptness
// that bounds how long DELETE /v1/jobs/{id} leaves lanes running.
func BenchmarkLaneCancel(b *testing.B) {
	prog, err := BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	const instrs = 1_000_000
	cfgs := laneSweepConfigs(8, instrs)
	for i := range cfgs {
		cfgs[i].Timeline = TimelineConfig{Enabled: true, IntervalInstructions: 50_000}
	}
	RunLanes(laneSweepConfigs(8, instrs), prog) // prime the replay store
	var settle time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancelCause(context.Background())
		var at time.Time
		ctx = timeline.WithSink(ctx, func(timeline.Point) {
			if at.IsZero() {
				at = time.Now()
				cancel(errors.New("bench: first interval"))
			}
		})
		if _, err := sim.RunLanesCtx(ctx, cfgs, prog); !errors.Is(err, cpu.ErrAborted) {
			b.Fatalf("RunLanesCtx err = %v, want cpu.ErrAborted", err)
		}
		settle += time.Since(at)
	}
	b.ReportMetric(float64(settle.Nanoseconds())/float64(b.N), "settle-ns")
}

// BenchmarkFig4 measures the miss-bound sensitivity study (E4).
func BenchmarkFig4(b *testing.B) {
	base, r := sharedBase(b)
	var spread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Figure4(base)
		lo, hi := rows[0].Variants[0].Cmp.RelativeED, rows[0].Variants[0].Cmp.RelativeED
		for _, v := range rows[0].Variants {
			if v.Cmp.RelativeED < lo {
				lo = v.Cmp.RelativeED
			}
			if v.Cmp.RelativeED > hi {
				hi = v.Cmp.RelativeED
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "applu-ED-spread")
}

// BenchmarkFig5 measures the size-bound sensitivity study (E5).
func BenchmarkFig5(b *testing.B) {
	base, r := sharedBase(b)
	var ed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Figure5(base)
		ed = rows[0].Variants[0].Cmp.RelativeED // applu at 2x size-bound
	}
	b.ReportMetric(ed, "applu-ED-2xSB")
}

// BenchmarkFig6 measures the conventional-cache-parameter study (E6).
func BenchmarkFig6(b *testing.B) {
	base, r := sharedBase(b)
	var ed128 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Figure6(base)
		ed128 = rows[0].Variants[2].Cmp.RelativeED // applu on 128K DM
	}
	b.ReportMetric(ed128, "applu-ED-128K")
}

// BenchmarkIntervalSweep runs the §5.6 sense-interval study (E7).
func BenchmarkIntervalSweep(b *testing.B) {
	base, r := sharedBase(b)
	var maxVar float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.IntervalSweep(base)
		maxVar = rows[0].MaxVariationPct
	}
	b.ReportMetric(maxVar, "applu-maxvar%")
}

// BenchmarkDivisibilitySweep runs the §5.6 divisibility study (E8).
func BenchmarkDivisibilitySweep(b *testing.B) {
	base, r := sharedBase(b)
	var ed4 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.DivisibilitySweep(base)
		ed4 = rows[0].Values[1] // applu at divisibility 4
	}
	b.ReportMetric(ed4, "applu-ED-div4")
}

// BenchmarkEnergyRatios evaluates the §5.2.1 worked ratios (E9).
func BenchmarkEnergyRatios(b *testing.B) {
	var r1, r2 float64
	for i := 0; i < b.N; i++ {
		m := Default64KEnergyModel()
		r1 = m.ExtraL1OverLeakageRatio(5, 0.5)
		r2 = m.ExtraL2OverLeakageRatio(0.5, 0.01)
	}
	b.ReportMetric(r1, "extraL1-ratio")
	b.ReportMetric(r2, "extraL2-ratio")
}

// BenchmarkAblationThrottle measures the oscillation-damper ablation.
func BenchmarkAblationThrottle(b *testing.B) {
	base, r := sharedBase(b)
	var dED float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.AblationThrottle(base)
		dED = rows[2].Variants[1].Cmp.RelativeED - rows[2].Variants[0].Cmp.RelativeED // gcc
	}
	b.ReportMetric(dED, "gcc-noThrottle-dED")
}

// BenchmarkAblationFlush measures the resizing-tags vs flush-on-resize
// ablation (the paper's §2.2 argument).
func BenchmarkAblationFlush(b *testing.B) {
	base, r := sharedBase(b)
	var dSlow float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.FlushAblation(base)
		dSlow = rows[2].Variants[1].Cmp.SlowdownPct - rows[2].Variants[0].Cmp.SlowdownPct // gcc
	}
	b.ReportMetric(dSlow, "gcc-flush-dSlow%")
}

// BenchmarkAblationWays measures the §2 set-vs-way resizing ablation on a
// 64K 4-way cache.
func BenchmarkAblationWays(b *testing.B) {
	base, r := sharedBase(b)
	var dED float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.WaysAblation(base)
		dED = rows[0].Variants[1].Cmp.RelativeED - rows[0].Variants[0].Cmp.RelativeED // applu
	}
	b.ReportMetric(dED, "applu-ways-dED")
}

// --- Microbenchmarks of the substrates ---

// BenchmarkFullSystemSimulation measures whole-stack simulation speed
// (instructions per second drives every experiment's wall time). The
// instrs/s headline is recomputed from the metrics registry's
// sim_instructions_total counter as registry-instrs/s — the same series
// behind driserve's sim_instructions_per_second gauge — so the bench
// artifact also checks that the instrumentation accounts every instruction.
func BenchmarkFullSystemSimulation(b *testing.B) {
	bench, err := BenchmarkByName("applu")
	if err != nil {
		b.Fatal(err)
	}
	params := DefaultParams(50_000)
	cfg := NewDRI(64<<10, 1, params)
	const instrs = 200_000
	reg := NewMetricsRegistry()
	before := reg.Snapshot().Value("sim_instructions_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(cfg, bench, instrs)
	}
	elapsed := b.Elapsed().Seconds()
	after := reg.Snapshot().Value("sim_instructions_total")
	b.ReportMetric(float64(instrs)*float64(b.N)/elapsed, "instrs/s")
	b.ReportMetric((after-before)/elapsed, "registry-instrs/s")
}

// BenchmarkWayMemo measures the memoized sweep path: a memo-table-size
// ladder of way-memoization configurations on the 64K 4-way L1, advanced
// lock-step over one decode of applu — the shape an engine.RunMany policy
// sweep executes. Per-set link registers let every lane skip the memory
// hierarchy entirely on a memoized fetch (the sequential-PC shortcut skips
// even the block compare inside straight-line runs), so the aggregate
// lane-instrs/s headline against BenchmarkLaneSweep's DRI lanes is the
// memoized tag path's sweep-level speedup. The solo-instrs/s metric is the
// single-configuration fused loop under the same policy, against
// BenchmarkFullSystemSimulation; memo-hit-share is the fraction of L1I
// accesses the per-set link table served without a tag probe.
func BenchmarkWayMemo(b *testing.B) {
	bench, err := BenchmarkByName("applu")
	if err != nil {
		b.Fatal(err)
	}
	const (
		instrs = 1_000_000
		lanes  = 8
	)
	cfgs := make([]SimConfig, lanes)
	for i := range cfgs {
		pol := NewWayMemo(50_000)
		if i > 0 {
			pol.MemoTableEntries = 32 << i // 64, 128, … 4096-entry tables
		}
		cfgs[i] = NewSimConfig(NewConventional(64<<10, 4), instrs).WithL1IPolicy(pol)
	}
	rs := RunLanes(cfgs, bench) // prime the replay store
	solo := cfgs[:1]
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunLanes(cfgs, bench)
		}
		b.ReportMetric(float64(instrs)*lanes*float64(b.N)/b.Elapsed().Seconds(), "lane-instrs/s")
		b.ReportMetric(float64(rs[0].Mem.L1ITagProbesSkipped)/float64(rs[0].ICache.Accesses), "memo-hit-share")
	})
	b.Run("solo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunLanes(solo, bench)
		}
		b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
	})
}

// BenchmarkTraceGeneration measures the synthetic workload generator alone.
func BenchmarkTraceGeneration(b *testing.B) {
	prog, err := trace.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	var ins isa.Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := prog.Stream(100_000)
		for s.Next(&ins) {
		}
	}
	b.ReportMetric(100_000*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTraceReplay measures the replay-store cursor over the same
// stream BenchmarkTraceGeneration generates; with -benchmem it
// demonstrates the zero-allocations-per-instruction property of the hot
// path (the only allocation is the one cursor per replayed run).
func BenchmarkTraceReplay(b *testing.B) {
	prog, err := trace.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	store := trace.NewStore(trace.DefaultStoreBudget)
	store.Replay(prog, 100_000) // record once
	var ins isa.Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := store.Stream(prog, 100_000)
		for s.Next(&ins) {
		}
	}
	b.ReportMetric(100_000*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTraceRecord measures the record path (generate + encode): the
// one-time cost a cold store pays before every later run replays.
func BenchmarkTraceRecord(b *testing.B) {
	prog, err := trace.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	var bytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := trace.NewStore(trace.DefaultStoreBudget)
		bytes = store.Replay(prog, 100_000).Bytes()
	}
	b.ReportMetric(float64(bytes)/100_000, "bytes/instr")
	b.ReportMetric(100_000*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkStackSolver measures the gated-Vdd stacking-effect fixed-point
// solver.
func BenchmarkStackSolver(b *testing.B) {
	tech := circuit.Default018()
	cell := circuit.Transistor{Vt: 0.2, Width: 1}
	gate := circuit.Transistor{Vt: 0.4, Width: 2.25}
	var v float64
	for i := 0; i < b.N; i++ {
		v = tech.StackedLeakage(cell, gate).NodeV
	}
	b.ReportMetric(v, "virtualGnd-V")
}
