package dricache_test

import (
	"fmt"

	"dricache"
)

// Compare a DRI i-cache against the conventional baseline on one benchmark
// and report the paper's headline metrics.
func Example() {
	bench, err := dricache.BenchmarkByName("mgrid")
	if err != nil {
		panic(err)
	}
	params := dricache.DefaultParams(100_000)
	params.MissBound = 100
	params.SizeBoundBytes = 2 << 10

	cmp := dricache.Compare(dricache.NewDRI(64<<10, 1, params), bench, 2_000_000)
	fmt.Printf("downsized below a quarter: %v\n", cmp.DRI.AvgActiveFraction < 0.25)
	fmt.Printf("energy-delay reduced: %v\n", cmp.RelativeED < 0.5)
	fmt.Printf("within 4%% slowdown: %v\n", cmp.SlowdownPct <= 4)
	// Output:
	// downsized below a quarter: true
	// energy-delay reduced: true
	// within 4% slowdown: true
}

// Evaluate the gated-Vdd SRAM cell design space (the paper's Table 2).
func ExampleTable2() {
	rows := dricache.Table2()
	for _, r := range rows {
		fmt.Printf("%-14s read %.2fx\n", r.Technique, r.RelativeReadTime)
	}
	// Output:
	// base high-Vt   read 2.22x
	// base low-Vt    read 1.00x
	// NMOS gated-Vdd read 1.08x
}

// Inspect a custom cell configuration at a custom operating point.
func ExampleEvaluateCellAt() {
	tech := dricache.DefaultTech()
	tech.TempK = 273.15 + 25 // room temperature

	cell := dricache.CellNMOSGatedVdd()
	m := dricache.EvaluateCellAt(tech, cell)
	fmt.Printf("standby well below active: %v\n",
		m.StandbyLeakageW < m.ActiveLeakageW/10)
	// Output:
	// standby well below active: true
}

// Run a single simulation and inspect the resize timeline.
func ExampleRun() {
	bench, _ := dricache.BenchmarkByName("hydro2d")
	params := dricache.DefaultParams(100_000)
	params.MissBound = 1600
	params.SizeBoundBytes = 2 << 10

	res := dricache.Run(dricache.NewDRI(64<<10, 1, params), bench, 2_000_000)
	fmt.Printf("resized at least 5 times: %v\n", len(res.Events) >= 5)
	fmt.Printf("ends at 2K: %v\n", res.Events[len(res.Events)-1].ToSets*32 == 2<<10)
	// Output:
	// resized at least 5 times: true
	// ends at 2K: true
}
