// L2 resizing: the multi-level DRI study. The paper resizes only the L1
// i-cache, but the L2 — with sixteen times the cells — dominates total
// leakage, so this example compares three systems against the same
// all-conventional baseline on the total-leakage account:
//
//  1. L1-only DRI (the paper's design),
//  2. L2-only DRI (resizing the dominant leaker), and
//  3. joint L1×L2 DRI,
//
// printing the per-level (L1I / L1D / L2) energy breakdown of each.
package main

import (
	"fmt"

	"dricache"
)

func main() {
	bench, err := dricache.BenchmarkByName("applu")
	if err != nil {
		panic(err)
	}
	const instructions = 4_000_000

	l1Params := dricache.DefaultParams(100_000)
	l1Params.MissBound = 800
	l1Params.SizeBoundBytes = 2 << 10

	// L2 adaptive parameters: same controller, L2-scale bounds. The
	// miss-bound sits above the conventional L2 miss count per interval so
	// the L2 sheds idle capacity; the size-bound keeps at least 64K powered.
	l2Params := dricache.DefaultParams(100_000)
	l2Params.MissBound = 4000
	l2Params.SizeBoundBytes = 64 << 10

	l1Conv := dricache.NewConventional(64<<10, 1)
	l1DRI := dricache.NewDRI(64<<10, 1, l1Params)
	l2Conv := dricache.NewConventionalL2()
	l2DRI := dricache.NewDRIL2(l2Params)

	fmt.Printf("benchmark: %s (%v), %d instructions\n\n", bench.Name, bench.Class, instructions)
	show("L1-only DRI", dricache.CompareJoint(l1DRI, l2Conv, bench, instructions))
	show("L2-only DRI", dricache.CompareJoint(l1Conv, l2DRI, bench, instructions))
	show("joint L1+L2 DRI", dricache.CompareJoint(l1DRI, l2DRI, bench, instructions))

	// The same counters driserve serves at /metrics: simulation, policy,
	// trace-store, and lane-executor totals from the shared registry.
	fmt.Println("shared metrics registry snapshot:")
	fmt.Print(dricache.NewMetricsRegistry().Snapshot().Format())
}

func show(name string, cmp dricache.Comparison) {
	t := cmp.Total
	fmt.Printf("%s\n", name)
	fmt.Printf("  active size:     L1I %5.1f%%   L2 %5.1f%%\n",
		100*t.L1I.ActiveFraction, 100*t.L2.ActiveFraction)
	level := func(label string, l dricache.LevelBreakdown) {
		fmt.Printf("  %-4s leakage %12.0f nJ  + resize overhead %10.0f nJ  (conv %12.0f nJ)\n",
			label, l.LeakageNJ, l.ExtraDynamicNJ, l.ConvLeakageNJ)
	}
	level("L1I", t.L1I)
	level("L1D", t.L1D)
	level("L2", t.L2)
	fmt.Printf("  total energy:    %.0f nJ vs %.0f nJ conventional → relative %.3f\n",
		t.EffectiveNJ, t.ConvLeakageNJ, t.RelativeEnergy)
	fmt.Printf("  energy-delay:    %.3f relative, slowdown %.2f%%\n",
		t.RelativeED, t.SlowdownPct)
	fmt.Printf("  L2 resize writebacks to memory: %d\n\n", cmp.DRI.Mem.L2ResizeWritebacks)
}
