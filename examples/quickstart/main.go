// Quickstart: simulate one benchmark with a DRI i-cache against the
// conventional baseline and print the paper's headline metrics — relative
// leakage energy-delay, average cache size, and slowdown.
package main

import (
	"fmt"

	"dricache"
)

func main() {
	bench, err := dricache.BenchmarkByName("applu")
	if err != nil {
		panic(err)
	}

	// The paper's base adaptive setup, scaled to a 100K-instruction sense
	// interval: downsize whenever an interval sees fewer misses than the
	// miss-bound, never below the 2K size-bound.
	params := dricache.DefaultParams(100_000)
	params.MissBound = 800
	params.SizeBoundBytes = 2 << 10

	cfg := dricache.NewDRI(64<<10, 1, params)
	cmp := dricache.Compare(cfg, bench, 4_000_000)

	fmt.Printf("benchmark:            %s (%v)\n", bench.Name, bench.Class)
	fmt.Printf("conventional:         %d cycles, miss rate %.4f\n",
		cmp.Conv.CPU.Cycles, cmp.Conv.MissRate())
	fmt.Printf("DRI:                  %d cycles, miss rate %.4f\n",
		cmp.DRI.CPU.Cycles, cmp.DRI.MissRate())
	fmt.Printf("average cache size:   %.1f%% of 64K\n", 100*cmp.DRI.AvgActiveFraction)
	fmt.Printf("relative energy-delay %.3f  (leakage %.3f + extra dynamic %.3f)\n",
		cmp.RelativeED, cmp.LeakageShareOfED, cmp.DynamicShareOfED)
	fmt.Printf("slowdown:             %.2f%%\n", cmp.SlowdownPct)
	fmt.Printf("\nenergy saved vs conventional leakage: %.1f%%\n",
		100*(1-cmp.RelativeEnergy))
}
