// Phase adaptation: run hydro2d — the paper's example of a benchmark with a
// crisp phase transition (a full-size initialization phase followed by 2K
// inner loops) — and visualize how the DRI i-cache tracks the program's
// instruction working set over time.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"dricache"
)

func main() {
	bench, err := dricache.BenchmarkByName("hydro2d")
	if err != nil {
		panic(err)
	}

	params := dricache.DefaultParams(100_000)
	params.MissBound = 1600
	params.SizeBoundBytes = 2 << 10

	cfg := dricache.NewDRI(64<<10, 1, params)
	res := dricache.RunTimeline(cfg, bench, 4_000_000)

	fmt.Printf("%s: %d resizes (%d down, %d up), %d throttle trips\n\n",
		bench.Name, len(res.Events), res.ICache.Downsizes, res.ICache.Upsizes,
		res.ICache.ThrottleTrips)

	// Size-over-time timeline from the resize log.
	fmt.Println("active size after each resize (sense-interval, size):")
	size := 64 << 10
	printBar(0, size)
	for _, ev := range res.Events {
		size = ev.ToSets * 32 // direct-mapped: sets × block bytes
		printBar(ev.Interval, size)
	}

	// The same adaptation seen through the interval flight recorder.
	fmt.Println("\nadaptation trace (per sense interval):")
	dricache.RenderTimeline(os.Stdout, bench.Name, res.Timeline)

	// Residency histogram.
	fmt.Println("\ncycles spent at each size:")
	sizes := make([]int, 0, len(res.SizeResidency))
	for s := range res.SizeResidency {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	var total uint64
	for _, s := range sizes {
		total += res.SizeResidency[s]
	}
	for _, s := range sizes {
		frac := float64(res.SizeResidency[s]) / float64(total)
		fmt.Printf("  %4dK %s %.1f%%\n", s>>10,
			strings.Repeat("#", int(frac*50)), 100*frac)
	}
	fmt.Printf("\naverage active size: %.1f%% of 64K\n", 100*res.AvgActiveFraction)
}

func printBar(interval uint64, sizeBytes int) {
	width := sizeBytes / (1 << 10) // one column per KB
	fmt.Printf("  %4d %6dK |%s\n", interval, sizeBytes>>10, strings.Repeat("█", width))
}
