// Parameter tuning: sweep the miss-bound × size-bound grid for one
// benchmark — the search behind the paper's Figure 3 — and print the
// energy-delay landscape with the performance-constrained winner.
//
// Usage: parameter_tuning [benchmark]   (default: compress)
package main

import (
	"fmt"
	"os"

	"dricache"
)

func main() {
	name := "compress"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench, err := dricache.BenchmarkByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	const (
		instructions = 2_000_000
		interval     = 100_000
	)
	missBounds := []uint64{100, 400, 1600}
	sizeBounds := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}

	fmt.Printf("%s: relative energy-delay (slowdown%%) across the parameter grid\n\n", name)
	fmt.Printf("%12s", "")
	for _, sb := range sizeBounds {
		fmt.Printf("  sb=%-10s", fmt.Sprintf("%dK", sb>>10))
	}
	fmt.Println()

	type best struct {
		ed        float64
		mb        uint64
		sb        int
		slowdown  float64
		haveValid bool
	}
	var winner best

	for _, mb := range missBounds {
		fmt.Printf("  mb=%-7d", mb)
		for _, sb := range sizeBounds {
			params := dricache.DefaultParams(interval)
			params.MissBound = mb
			params.SizeBoundBytes = sb
			cmp := dricache.Compare(dricache.NewDRI(64<<10, 1, params), bench, instructions)
			fmt.Printf("  %5.3f (%4.1f%%)", cmp.RelativeED, cmp.SlowdownPct)
			if cmp.SlowdownPct <= 4 &&
				(!winner.haveValid || cmp.RelativeED < winner.ed) {
				winner = best{cmp.RelativeED, mb, sb, cmp.SlowdownPct, true}
			}
		}
		fmt.Println()
	}

	if winner.haveValid {
		fmt.Printf("\nbest within the 4%% constraint: mb=%d sb=%dK -> ED %.3f at %.1f%% slowdown\n",
			winner.mb, winner.sb>>10, winner.ed, winner.slowdown)
	} else {
		fmt.Println("\nno grid point met the 4% performance constraint")
	}
}
