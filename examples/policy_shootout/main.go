// Policy shoot-out: the leakage-control design space as a grid. Every
// benchmark runs under every policy — conventional, the paper's DRI, cache
// decay (per-line gated-Vdd), drowsy (per-line low-Vdd), way gating, and
// way memoization (a dynamic-energy contender) — on a common 64K 4-way L1
// i-cache, so the techniques are scored against the same conventional
// baseline. This is the comparison Bai et al. frame: state-preserving and
// state-destroying techniques win in different regions of the
// power-performance space, and the grid shows which region each benchmark
// occupies.
//
// The sweep runs through the shared simulation engine, so all six policies
// of a benchmark reuse one conventional baseline simulation.
package main

import (
	"flag"
	"fmt"

	"dricache"
)

func main() {
	quick := flag.Bool("quick", false, "run at test scale (1M instructions) for smoke tests")
	flag.Parse()

	scale := dricache.DefaultScale()
	benchNames := []string{"applu", "m88ksim", "gcc", "tomcatv", "li", "perl"}
	if *quick {
		scale = dricache.QuickScale()
		benchNames = benchNames[:3]
	}

	runner := dricache.NewExperiments(scale)
	var benches []dricache.Benchmark
	for _, name := range benchNames {
		b, err := dricache.BenchmarkByName(name)
		if err != nil {
			panic(err)
		}
		benches = append(benches, b)
	}

	choices := runner.StandardPolicyChoices()
	fmt.Printf("policy shoot-out: %d benchmarks × %d policies at %d instructions\n\n",
		len(benches), len(choices), scale.Instructions)

	points := runner.PolicySweep(benches, choices)
	fmt.Println("relative energy-delay (slowdown) per benchmark × policy:")
	fmt.Print(dricache.FormatPolicies(points))

	fmt.Println("\nwinners under a 4% slowdown budget:")
	fmt.Print(dricache.FormatBestPolicies(dricache.BestPolicy(points, 4)))

	// The drowsy/decay contrast in one line: drowsy never misses more than
	// conventional, decay always does.
	for _, p := range points {
		if p.Bench == benches[0].Name && (p.Policy == "decay" || p.Policy == "drowsy") {
			fmt.Printf("\n%s/%s: %d misses vs %d conventional, wakeups %d, gated lines %d\n",
				p.Bench, p.Policy,
				p.Cmp.DRI.ICache.Misses, p.Cmp.Conv.ICache.Misses,
				p.Cmp.DRI.L1IPolicyStats.Wakeups, p.Cmp.DRI.L1IPolicyStats.GatedLines)
		}
	}

	// The same counters driserve serves at /metrics: simulation, policy,
	// trace-store, and lane-executor totals from the shared registry.
	fmt.Println("\nshared metrics registry snapshot:")
	fmt.Print(dricache.NewMetricsRegistry().Snapshot().Format())
}
