// Gated-Vdd design-space exploration: sweep the gating transistor width
// and plot the standby-leakage vs read-time trade-off the paper's §5.1
// discusses ("presenting a trade-off among area overhead, leakage
// reduction, and impact on performance"), for both NMOS and PMOS gating,
// with and without the charge pump.
package main

import (
	"fmt"

	"dricache"
)

func main() {
	// Table 2 first, as the anchor.
	fmt.Println("Table 2 (from the analytical circuit model):")
	for _, r := range dricache.Table2() {
		fmt.Printf("  %-16s read %.2fx  active %4.0f  standby ",
			r.Technique, r.RelativeReadTime, r.ActiveLeakE9NJ)
		if r.StandbyLeakE9NJ < 0 {
			fmt.Println("  N/A")
		} else {
			fmt.Printf("%4.0f  (x10^-9 nJ)\n", r.StandbyLeakE9NJ)
		}
	}

	fmt.Println("\ngating-width sweep (per-cell width ratio -> standby nJx1e-9, read time, area%):")
	fmt.Printf("%8s  %28s  %28s\n", "width", "NMOS dual-Vt + pump", "PMOS dual-Vt + pump")
	for _, w := range []float64{0.5, 1, 2, 2.25, 4, 8, 16} {
		n := dricache.CellNMOSGatedVdd()
		n.GateWidthRatio = w
		p := dricache.CellPMOSGatedVdd()
		p.GateWidthRatio = w
		mn := dricache.EvaluateCell(n)
		mp := dricache.EvaluateCell(p)
		fmt.Printf("%8.2f  %8.1f %6.3fx %5.1f%%  %10.1f %6.3fx %5.1f%%\n",
			w,
			mn.StandbyLeakageNJ*1e9, mn.RelativeReadTime, mn.AreaIncreasePct,
			mp.StandbyLeakageNJ*1e9, mp.RelativeReadTime, mp.AreaIncreasePct)
	}

	fmt.Println("\ncharge pump ablation (NMOS dual-Vt, width 2.25):")
	withPump := dricache.CellNMOSGatedVdd()
	noPump := withPump
	noPump.GateBoost = 0
	noPump.Name = "no pump"
	for _, c := range []dricache.CellConfig{withPump, noPump} {
		m := dricache.EvaluateCell(c)
		fmt.Printf("  %-16s read %.3fx  standby %.1f x10^-9 nJ\n",
			c.Name, m.RelativeReadTime, m.StandbyLeakageNJ*1e9)
	}

	fmt.Println("\ntemperature sensitivity of the low-Vt cell (leakage x10^-9 nJ/cycle):")
	for _, tC := range []float64{25, 50, 75, 110} {
		tech := dricache.DefaultTech()
		tech.TempK = tC + 273.15
		m := dricache.EvaluateCellAt(tech, dricache.CellBaseLowVt())
		fmt.Printf("  %5.0f°C  %8.1f\n", tC, m.ActiveLeakageNJ*1e9)
	}
}
